package exp

import (
	"os"
	"path/filepath"
	"sort"
	"testing"
)

// telemetryScale shrinks the measured window like the golden tests so a
// telemetry sweep stays fast.
func telemetryScale() Scale {
	sc := Small
	sc.Warmup = 40_000
	sc.Measure = 120_000
	return sc
}

// runTelemetrySweep precomputes a small sweep with per-simulation telemetry
// files under dir, on a 4-worker pool.
func runTelemetrySweep(t *testing.T, dir string) {
	t.Helper()
	r := NewRunner(telemetryScale())
	r.Jobs = 4
	r.TelemetryDir = dir
	r.SampleInterval = 30_000
	arms := []Arm{
		baseArm("stride", ""),
		streamlineArm("streamline", "stride", "", nil),
	}
	r.Precompute(SingleNames(arms, []string{"sphinx06", "mcf06", "pr"}))
	if err := r.TelemetryErr(); err != nil {
		t.Fatal(err)
	}
}

func listFiles(t *testing.T, dir string) []string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range entries {
		names = append(names, e.Name())
	}
	sort.Strings(names)
	return names
}

// TestTelemetryDirParallelDeterministic runs the same sweep twice on a
// 4-worker pool and requires identical file sets with identical bytes: the
// per-simulation files must not depend on scheduling.
func TestTelemetryDirParallelDeterministic(t *testing.T) {
	d1, d2 := t.TempDir(), t.TempDir()
	runTelemetrySweep(t, d1)
	runTelemetrySweep(t, d2)

	f1, f2 := listFiles(t, d1), listFiles(t, d2)
	if len(f1) != 6 {
		t.Fatalf("sweep wrote %d telemetry files, want 6 (2 arms x 3 workloads): %v", len(f1), f1)
	}
	if len(f1) != len(f2) {
		t.Fatalf("file sets differ: %v vs %v", f1, f2)
	}
	for i := range f1 {
		if f1[i] != f2[i] {
			t.Fatalf("file sets differ: %v vs %v", f1, f2)
		}
		b1, err := os.ReadFile(filepath.Join(d1, f1[i]))
		if err != nil {
			t.Fatal(err)
		}
		b2, err := os.ReadFile(filepath.Join(d2, f2[i]))
		if err != nil {
			t.Fatal(err)
		}
		if string(b1) != string(b2) {
			t.Errorf("%s: contents differ between runs (%d vs %d bytes)", f1[i], len(b1), len(b2))
		}
		if len(b1) == 0 {
			t.Errorf("%s: empty telemetry file", f1[i])
		}
	}
}

// TestTelemetryDirFilenames pins the memo-key sanitization so file names stay
// stable for downstream tooling.
func TestTelemetryDirFilenames(t *testing.T) {
	got := telemetryFileName("base+stride|sphinx06,mcf06|2|0.000")
	want := "base+stride_sphinx06_mcf06_2_0.000.jsonl"
	if got != want {
		t.Errorf("telemetryFileName = %q, want %q", got, want)
	}
}
