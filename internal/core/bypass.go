package core

import "streamline/internal/mem"

// This file implements the metadata bypass extension. Section V-B1 of the
// paper notes that Triangel outperforms Streamline on SPEC 2006 mcf because
// Triangel bypasses metadata from scan PCs (data accesses with no temporal
// reuse) while "Streamline does not have a bypassing mechanism [and] must
// insert these non-temporal entries and evict more valuable entries".
// Options.Bypass adds that mechanism: a small per-PC reuse sampler in the
// spirit of Triangel's history sampler, adapted to stream entries — a
// sampled completed entry that is never re-triggered before aging out marks
// its PC as scan-like, and scan-like PCs stop inserting metadata.

// bypassSampler tracks sampled stream triggers per PC to measure whether a
// PC's metadata is ever reused.
type bypassSampler struct {
	entries []bypassEntry
	next    int
}

type bypassEntry struct {
	valid   bool
	trigger mem.Line
	pcSig   uint32
	used    bool
}

func newBypassSampler(size int) *bypassSampler {
	return &bypassSampler{entries: make([]bypassEntry, size)}
}

// probe marks a sampled trigger as reused and reports whether it was found.
func (b *bypassSampler) probe(trigger mem.Line) (uint32, bool) {
	for i := range b.entries {
		e := &b.entries[i]
		if e.valid && e.trigger == trigger {
			if !e.used {
				e.used = true
				return e.pcSig, true
			}
			return 0, false
		}
	}
	return 0, false
}

// insert samples a completed entry's trigger, returning the evicted victim
// if it aged out unused (the "no reuse" signal).
func (b *bypassSampler) insert(trigger mem.Line, pcSig uint32) (uint32, bool) {
	v := &b.entries[b.next]
	b.next = (b.next + 1) % len(b.entries)
	victimSig, unused := v.pcSig, v.valid && !v.used
	*v = bypassEntry{valid: true, trigger: trigger, pcSig: pcSig}
	return victimSig, unused
}

// bypassState is the per-prefetcher bypass machinery.
type bypassState struct {
	sampler *bypassSampler
	reuse   map[uint32]int8 // per-PC-signature reuse confidence, 0..15
	ctr     uint32
	// shift is the adaptive sampling period exponent: unused evictions
	// lengthen the period (so samples survive to their next-lap reuse on
	// large footprints), reuses shorten it — the same adaptation
	// Triangel's history sampler uses.
	shift uint8
}

const (
	bypassSamplerSize = 128
	bypassThreshold   = 4 // below this, the PC stops inserting metadata
)

func newBypassState() *bypassState {
	return &bypassState{
		sampler: newBypassSampler(bypassSamplerSize),
		reuse:   make(map[uint32]int8),
		shift:   4,
	}
}

func (b *bypassState) sig(pc mem.PC) uint32 { return uint32(mem.HashPC(pc, 20)) }

func (b *bypassState) bump(sig uint32, d int8) {
	n := b.reuse[sig] + d
	if n < 0 {
		n = 0
	}
	if n > 15 {
		n = 15
	}
	b.reuse[sig] = n
}

// conf returns the PC's reuse confidence, optimistic for unseen PCs so cold
// workloads begin training.
func (b *bypassState) conf(pc mem.PC) int8 {
	if v, ok := b.reuse[b.sig(pc)]; ok {
		return v
	}
	return 8
}

// observeLookup is called when a prefetch-side store lookup happens for a
// trigger: a sampled trigger being looked up again is the reuse signal.
func (b *bypassState) observeLookup(trigger mem.Line) {
	if sig, reused := b.sampler.probe(trigger); reused {
		b.bump(sig, 2)
		if b.shift > 0 {
			b.shift--
		}
	}
}

// observeCompleted is called for each completed stream entry; it samples at
// the adaptive period and demotes PCs whose samples age out unused.
func (b *bypassState) observeCompleted(pc mem.PC, trigger mem.Line) {
	b.ctr++
	if b.ctr&(1<<b.shift-1) != 0 {
		return
	}
	sig := b.sig(pc)
	if _, ok := b.reuse[sig]; !ok {
		b.reuse[sig] = 8
	}
	if victim, unused := b.sampler.insert(trigger, sig); unused {
		b.bump(victim, -1)
		if b.shift < 14 {
			b.shift++
		}
	}
}

// shouldBypass reports whether the PC's completed entries should skip the
// metadata store.
func (b *bypassState) shouldBypass(pc mem.PC) bool {
	return b.conf(pc) < bypassThreshold
}
