package metrics

import (
	"regexp"
	"strings"
	"sync"
	"testing"
)

// TestExpositionGolden pins the full text format: HELP/TYPE lines, family
// and series ordering, label rendering, histogram bucket cumulation, float
// formatting. Determinism of this rendering is load-bearing — the daemon's
// /metricz golden checks and any scraper config depend on it.
func TestExpositionGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("zz_last_total", "sorts last").Add(7)
	c := r.Counter("requests_total", "requests by outcome", L("outcome", "ok"))
	c.Add(3)
	r.Counter("requests_total", "requests by outcome", L("outcome", "err")).Inc()
	g := r.Gauge("queue_depth", "admitted unfinished work")
	g.Set(4)
	g.Add(-1.5)
	r.GaugeFunc("cache_entries", "live entries", func() float64 { return 12 })
	h := r.Histogram("latency_seconds", "request latency", []float64{0.01, 0.1, 1})
	h.Observe(0.005)
	h.Observe(0.1) // bounds are inclusive: lands in le="0.1"
	h.Observe(2.5) // overflows into +Inf only

	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP cache_entries live entries
# TYPE cache_entries gauge
cache_entries 12
# HELP latency_seconds request latency
# TYPE latency_seconds histogram
latency_seconds_bucket{le="0.01"} 1
latency_seconds_bucket{le="0.1"} 2
latency_seconds_bucket{le="1"} 2
latency_seconds_bucket{le="+Inf"} 3
latency_seconds_sum 2.605
latency_seconds_count 3
# HELP queue_depth admitted unfinished work
# TYPE queue_depth gauge
queue_depth 2.5
# HELP requests_total requests by outcome
# TYPE requests_total counter
requests_total{outcome="err"} 1
requests_total{outcome="ok"} 3
# HELP zz_last_total sorts last
# TYPE zz_last_total counter
zz_last_total 7
`
	if b.String() != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", b.String(), want)
	}
}

// TestLabeledHistogramExposition covers the le-label merge with existing
// labels — the layout the daemon's per-stage histograms use.
func TestLabeledHistogramExposition(t *testing.T) {
	r := NewRegistry()
	r.Histogram("stage_seconds", "", []float64{1}, L("stage", "decode")).Observe(0.5)
	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	want := `# TYPE stage_seconds histogram
stage_seconds_bucket{stage="decode",le="1"} 1
stage_seconds_bucket{stage="decode",le="+Inf"} 1
stage_seconds_sum{stage="decode"} 0.5
stage_seconds_count{stage="decode"} 1
`
	if b.String() != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", b.String(), want)
	}
}

// TestGetOrCreate: the same (name, labels) resolves to the same instrument;
// label order does not matter; distinct labels are distinct series.
func TestGetOrCreate(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("c_total", "", L("x", "1"), L("y", "2"))
	b := r.Counter("c_total", "", L("y", "2"), L("x", "1"))
	if a != b {
		t.Error("same labels in different order resolved to different counters")
	}
	if c := r.Counter("c_total", "", L("x", "2"), L("y", "2")); c == a {
		t.Error("distinct labels resolved to the same counter")
	}
	h1 := r.Histogram("h_seconds", "", LatencyBuckets)
	h2 := r.Histogram("h_seconds", "", LatencyBuckets)
	if h1 != h2 {
		t.Error("histogram get-or-create returned distinct instruments")
	}
}

func wantPanic(t *testing.T, what string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s did not panic", what)
		}
	}()
	fn()
}

// TestMisusePanics: kind mismatches, bucket-layout mismatches, invalid
// names, and duplicate func registration are programming errors.
func TestMisusePanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("c_total", "")
	wantPanic(t, "kind mismatch", func() { r.Gauge("c_total", "") })
	r.Histogram("h_seconds", "", []float64{1, 2})
	wantPanic(t, "bucket mismatch", func() { r.Histogram("h_seconds", "", []float64{1, 3}) })
	wantPanic(t, "empty buckets", func() { r.Histogram("h2_seconds", "", nil) })
	wantPanic(t, "unsorted buckets", func() { r.Histogram("h3_seconds", "", []float64{2, 1}) })
	wantPanic(t, "invalid name", func() { r.Counter("bad-name", "") })
	wantPanic(t, "digit-leading name", func() { r.Counter("9lives", "") })
	wantPanic(t, "invalid label name", func() { r.Counter("ok_total", "", L("bad-label", "v")) })
	r.GaugeFunc("gf", "", func() float64 { return 0 })
	wantPanic(t, "duplicate func", func() { r.GaugeFunc("gf", "", func() float64 { return 0 }) })
}

// TestLabelEscaping: quotes, backslashes, and newlines in label values (and
// HELP text) survive the exposition escapes.
func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("c_total", "line1\nline2 \\ end", L("k", `a"b\c`+"\n")).Inc()
	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	want := "# HELP c_total line1\\nline2 \\\\ end\n" +
		"# TYPE c_total counter\n" +
		`c_total{k="a\"b\\c\n"} 1` + "\n"
	if b.String() != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%q\n--- want ---\n%q", b.String(), want)
	}
}

// expositionLine matches one sample or comment line of the text format — the
// grammar check reused by the serve scrape tests.
var expositionLine = regexp.MustCompile(
	`^(# (HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]*( .*)?|[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? (-?[0-9.e+-]+|\+Inf|-Inf|NaN))$`)

// CheckExposition fails t unless every line of text parses as exposition
// format. Shared with internal/serve's scrape-during-load test via copy —
// kept here so the grammar lives next to the writer.
func CheckExposition(t *testing.T, text string) {
	t.Helper()
	if text == "" || !strings.HasSuffix(text, "\n") {
		t.Fatalf("exposition text empty or missing trailing newline: %q", text)
	}
	for _, line := range strings.Split(strings.TrimSuffix(text, "\n"), "\n") {
		if !expositionLine.MatchString(line) {
			t.Errorf("line does not parse as exposition format: %q", line)
		}
	}
}

// TestConcurrentUse hammers every instrument type while scraping; run under
// -race this is the registry's central safety proof.
func TestConcurrentUse(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("ops_total", "", L("kind", "write"))
			g := r.Gauge("depth", "")
			h := r.Histogram("lat_seconds", "", LatencyBuckets)
			for j := 0; j < 1000; j++ {
				c.Inc()
				g.Add(1)
				g.Add(-1)
				h.Observe(float64(j) * 1e-4)
			}
		}()
	}
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				var b strings.Builder
				if err := r.WriteText(&b); err != nil {
					t.Error(err)
				}
			}
		}()
	}
	wg.Wait()

	if got := r.Counter("ops_total", "", L("kind", "write")).Value(); got != 8000 {
		t.Errorf("counter = %d, want 8000", got)
	}
	if got := r.Gauge("depth", "").Value(); got != 0 {
		t.Errorf("gauge = %g, want 0", got)
	}
	if got := r.Histogram("lat_seconds", "", LatencyBuckets).Count(); got != 8000 {
		t.Errorf("histogram count = %d, want 8000", got)
	}
	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	CheckExposition(t, b.String())
}

// TestHistogramBoundarySemantics: observations exactly on a bound count into
// that bound's bucket (le is inclusive).
func TestHistogramBoundarySemantics(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h_seconds", "", []float64{1, 2})
	h.Observe(1) // le="1"
	h.Observe(2) // le="2"
	var b strings.Builder
	r.WriteText(&b)
	for _, want := range []string{
		`h_seconds_bucket{le="1"} 1`,
		`h_seconds_bucket{le="2"} 2`,
		`h_seconds_bucket{le="+Inf"} 2`,
	} {
		if !strings.Contains(b.String(), want+"\n") {
			t.Errorf("missing %q in:\n%s", want, b.String())
		}
	}
	if h.Mean() != 1.5 {
		t.Errorf("mean = %g, want 1.5", h.Mean())
	}
}
